// Command drrs-lint is the vettool driver for the determinism analyzers in
// internal/lint. It speaks cmd/go's unitchecker protocol on the standard
// library alone (no golang.org/x/tools dependency), so the whole tree is
// checked with:
//
//	go build -o bin/drrs-lint ./cmd/drrs-lint
//	go vet -vettool=./bin/drrs-lint ./...
//
// Protocol: `go vet` first asks for -flags (JSON flag descriptions) and
// -V=full (a content-derived version line used to key the vet result
// cache), then invokes the tool once per package with the path of a
// vet.cfg JSON file describing the package's sources and the export data
// of its dependencies. Dependency packages arrive with VetxOnly=true and
// are skipped outright — the analyzers carry no cross-package facts.
//
// Analyzers can be disabled individually, e.g.:
//
//	go vet -vettool=./bin/drrs-lint -maporder=false ./...
//
// Exit status: 0 clean, 1 internal error (bad config, typecheck failure),
// 2 diagnostics reported — mirroring x/tools' unitchecker.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"drrs/internal/lint"
)

// vetConfig mirrors the vet.cfg JSON that cmd/go writes for each package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	versionFlag := flag.String("V", "", "print version and exit (cmd/go passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit")
	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		enabled[a.Name] = flag.Bool(a.Name, true, a.Doc)
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		// cmd/go keys its vet-result cache on this line, so derive it from
		// the binary's own content: rebuilt analyzers invalidate stale
		// verdicts even when the source tree is otherwise unchanged.
		fmt.Printf("drrs-lint version %s\n", selfHash())
		return
	case *flagsFlag:
		printFlagDefs()
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drrs-lint vet.cfg  (run via go vet -vettool=drrs-lint)")
		os.Exit(1)
	}
	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	diags, err := checkPackage(flag.Arg(0), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drrs-lint: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
		}
		os.Exit(2)
	}
}

func checkPackage(cfgPath string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("decode %s: %v", cfgPath, err)
	}
	// cmd/go expects the facts output file to exist even though the
	// analyzers export none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// A dependency analyzed only for facts; nothing to do.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	// Resolve imports through the export data cmd/go listed for us: the
	// import path goes through ImportMap (vendoring, test variants) and the
	// canonical path names a compiler export file in PackageFile.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q listed in %s", path, cfgPath)
		}
		return os.Open(file)
	})
	tcfg := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				path = importPath
			}
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}
	return lint.Run(fset, files, pkg, info, analyzers)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printFlagDefs describes the analyzer on/off flags in the JSON shape
// cmd/go expects from `vettool -flags`.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var out []jsonFlag
	for _, a := range lint.All() {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, _ := json.Marshal(out)
	fmt.Println(string(data))
}

// selfHash fingerprints the running binary for the -V=full version line.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}
