package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchMalformedValue(t *testing.T) {
	in := "BenchmarkSchedulerTimerHeap-8   1000   12x34 ns/op   0 allocs/op\n"
	_, err := parseBench(strings.NewReader(in))
	if err == nil {
		t.Fatal("malformed ns/op value parsed without error")
	}
	if !strings.Contains(err.Error(), `bad value "12x34"`) {
		t.Fatalf("error %q does not name the bad value", err)
	}
}

func TestParseBenchNormalizesAndKeepsMin(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkEdgePump-8     2000   1500 ns/op   3 allocs/op   128 B/op",
		"BenchmarkEdgePump-8     2000   1400 ns/op   3 allocs/op   120 B/op",
		"not a bench line",
		"BenchmarkNoSuffix       1000   900 ns/op",
		"PASS",
	}, "\n")
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
	ep := got["BenchmarkEdgePump"]
	if ep == nil {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if ep.NsPerOp != 1400 || ep.BytesPerOp != 120 {
		t.Fatalf("repeated runs should keep the minimum, got ns=%v B=%v", ep.NsPerOp, ep.BytesPerOp)
	}
	if ns := got["BenchmarkNoSuffix"]; ns == nil || ns.AllocsPerOp != -1 {
		t.Fatalf("absent allocs/op should stay ungated (-1), got %+v", ns)
	}
}

// writeTestBaseline writes a one-benchmark baseline gating all three metrics
// and returns its path.
func writeTestBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	base := `{
  "threshold": 0.10,
  "benchmarks": {
    "BenchmarkEdgePump": {"ns_per_op": 1000, "allocs_per_op": 2, "bytes_per_op": 64}
  }
}
`
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, baseline, input string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run([]string{"-baseline", baseline}, strings.NewReader(input), &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunExitStatuses(t *testing.T) {
	baseline := writeTestBaseline(t)

	t.Run("within threshold", func(t *testing.T) {
		code, out, _ := runGate(t, baseline, "BenchmarkEdgePump-8 1000 1050 ns/op 2 allocs/op 64 B/op\n")
		if code != exitOK {
			t.Fatalf("exit %d, want %d", code, exitOK)
		}
		if !strings.Contains(out, "within +10%") {
			t.Fatalf("missing pass summary in stdout:\n%s", out)
		}
	})

	t.Run("regression", func(t *testing.T) {
		code, _, errs := runGate(t, baseline, "BenchmarkEdgePump-8 1000 1300 ns/op 3 allocs/op 64 B/op\n")
		if code != exitRegression {
			t.Fatalf("exit %d, want %d", code, exitRegression)
		}
		// One summary line per regressed benchmark, naming every bad metric.
		if !strings.Contains(errs, "FAIL BenchmarkEdgePump: ns/op 1300 > 1100 (+30% over 1000); allocs/op 3 > 2.2 (+50% over 2)") {
			t.Fatalf("missing per-benchmark summary line in stderr:\n%s", errs)
		}
	})

	t.Run("malformed input", func(t *testing.T) {
		code, _, errs := runGate(t, baseline, "BenchmarkEdgePump-8 1000 oops ns/op\n")
		if code != exitUsage {
			t.Fatalf("exit %d, want %d", code, exitUsage)
		}
		if !strings.Contains(errs, "bad value") {
			t.Fatalf("stderr does not explain the parse failure:\n%s", errs)
		}
	})

	t.Run("gated metric missing", func(t *testing.T) {
		code, _, errs := runGate(t, baseline, "BenchmarkEdgePump-8 1000 1050 ns/op\n")
		if code != exitIncomplete {
			t.Fatalf("exit %d, want %d", code, exitIncomplete)
		}
		if !strings.Contains(errs, "allocs/op gated but missing from input") {
			t.Fatalf("stderr does not name the missing metric:\n%s", errs)
		}
	})

	t.Run("no bench lines", func(t *testing.T) {
		code, _, _ := runGate(t, baseline, "goos: linux\nPASS\n")
		if code != exitIncomplete {
			t.Fatalf("exit %d, want %d", code, exitIncomplete)
		}
	})

	t.Run("no overlap with baseline", func(t *testing.T) {
		code, _, _ := runGate(t, baseline, "BenchmarkSomethingElse-8 10 5 ns/op\n")
		if code != exitIncomplete {
			t.Fatalf("exit %d, want %d", code, exitIncomplete)
		}
	})

	t.Run("regression beats missing metric", func(t *testing.T) {
		code, _, _ := runGate(t, baseline, "BenchmarkEdgePump-8 1000 1300 ns/op\n")
		if code != exitRegression {
			t.Fatalf("exit %d, want %d", code, exitRegression)
		}
	})
}

func TestSummaryZeroBaseline(t *testing.T) {
	r := &result{name: "BenchmarkStatePutGet", limit: 0.15, failures: []metricFailure{
		{metric: "allocs/op", got: 3, base: 0},
	}}
	want := "BenchmarkStatePutGet: allocs/op 3 (baseline 0)"
	if got := r.summary(); got != want {
		t.Fatalf("summary = %q, want %q", got, want)
	}
}
