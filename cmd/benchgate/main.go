// Command benchgate is the benchmark-regression gate: it parses `go test
// -bench` output (stdin or -input), compares every benchmark that appears in
// the checked-in baseline, and exits non-zero when ns/op, allocs/op, or
// B/op regresses beyond the threshold. CI runs it instead of
// fire-and-forget smoke benches, so hot-path regressions fail the build
// instead of scrolling past.
//
// Usage:
//
//	go test -run '^$' -bench 'Scheduler|EdgePump' -benchmem ./... | benchgate -baseline bench_baseline.json
//	benchgate -baseline bench_baseline.json -input bench.txt
//	go test -run '^$' -bench . -benchmem ./... | benchgate -baseline bench_baseline.json -update
//
// The baseline records ns/op, allocs/op, and B/op per benchmark plus a
// global regression threshold (fraction; 0.15 = fail beyond +15%). ns/op is
// machine-dependent — regenerate the baseline with -update when the CI
// runner class changes. allocs/op and B/op are exact, so a zero-alloc
// baseline fails on the first allocation that sneaks back in. A negative
// (or absent) metric in the baseline is not gated for that benchmark.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the checked-in reference (bench_baseline.json).
type Baseline struct {
	// Threshold is the allowed fractional regression (default 0.15).
	Threshold float64 `json:"threshold"`
	// Note documents how to regenerate the file.
	Note       string                `json:"note,omitempty"`
	Benchmarks map[string]*Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's reference numbers. A negative value means
// the metric is not gated for that benchmark; metrics absent from the
// baseline JSON decode as ungated rather than as a zero budget.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// UnmarshalJSON defaults missing metrics to -1 (ungated), so baselines
// written before a metric existed keep gating exactly what they recorded.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	type alias Benchmark
	a := alias{NsPerOp: -1, AllocsPerOp: -1, BytesPerOp: -1}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*b = Benchmark(a)
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "baseline JSON to compare against")
	input := flag.String("input", "", "benchmark output file (default stdin)")
	threshold := flag.Float64("threshold", 0, "override the baseline's regression threshold (fraction)")
	update := flag.Bool("update", false, "rewrite the baseline from the input instead of gating")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatalf("open input: %v", err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fatalf("parse benchmark output: %v", err)
	}
	if len(measured) == 0 {
		fatalf("no benchmark result lines in input — did the bench step run with -bench?")
	}

	if *update {
		writeBaseline(*baselinePath, measured, *threshold)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("decode baseline %s: %v", *baselinePath, err)
	}
	limit := base.Threshold
	if *threshold > 0 {
		limit = *threshold
	}
	if limit <= 0 {
		limit = 0.15
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	compared := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			continue // this CI step ran a subset of the gated benchmarks
		}
		compared++
		check := func(metric string, got, want float64) {
			if want < 0 {
				return // metric not gated for this benchmark
			}
			if got < 0 {
				// A gated metric missing from the input means the bench step
				// lost its flag (e.g. -benchmem): passing silently would
				// defeat the gate exactly when it matters.
				failures = append(failures, fmt.Sprintf("%s %s: gated by the baseline but absent from the input (missing -benchmem?)",
					name, metric))
				fmt.Printf("%-34s %-12s %14s  baseline %14.4g  FAIL\n", name, metric, "missing", want)
				return
			}
			allowed := want * (1 + limit)
			status := "ok"
			if got > allowed {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s %s: %.4g > %.4g (baseline %.4g +%d%%)",
					name, metric, got, allowed, want, int(limit*100)))
			}
			fmt.Printf("%-34s %-12s %14.4g  baseline %14.4g  %s\n", name, metric, got, want, status)
		}
		check("ns/op", got.NsPerOp, want.NsPerOp)
		check("allocs/op", got.AllocsPerOp, want.AllocsPerOp)
		check("B/op", got.BytesPerOp, want.BytesPerOp)
	}
	if compared == 0 {
		fatalf("none of the %d baseline benchmarks appeared in the input", len(base.Benchmarks))
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchgate: %d regression(s) beyond +%d%%:\n", len(failures), int(limit*100))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d benchmark(s) within +%d%% of baseline\n", compared, int(limit*100))
}

// parseBench extracts ns/op and allocs/op per benchmark from `go test -bench`
// output. Names are normalized by stripping the -GOMAXPROCS suffix; repeated
// runs of one benchmark keep the minimum (the conventional stable estimate).
func parseBench(r io.Reader) (map[string]*Benchmark, error) {
	out := make(map[string]*Benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := &Benchmark{NsPerOp: -1, AllocsPerOp: -1, BytesPerOp: -1}
		// Lines read "<name> <N> <value> <unit> <value> <unit> ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			}
		}
		if b.NsPerOp < 0 && b.AllocsPerOp < 0 && b.BytesPerOp < 0 {
			continue
		}
		if prev, ok := out[name]; ok {
			if b.NsPerOp >= 0 && (prev.NsPerOp < 0 || b.NsPerOp < prev.NsPerOp) {
				prev.NsPerOp = b.NsPerOp
			}
			if b.AllocsPerOp >= 0 && (prev.AllocsPerOp < 0 || b.AllocsPerOp < prev.AllocsPerOp) {
				prev.AllocsPerOp = b.AllocsPerOp
			}
			if b.BytesPerOp >= 0 && (prev.BytesPerOp < 0 || b.BytesPerOp < prev.BytesPerOp) {
				prev.BytesPerOp = b.BytesPerOp
			}
			continue
		}
		out[name] = b
	}
	return out, sc.Err()
}

func writeBaseline(path string, measured map[string]*Benchmark, threshold float64) {
	if threshold <= 0 {
		threshold = 0.15
	}
	base := Baseline{
		Threshold:  threshold,
		Note:       "regenerate with: go test -run '^$' -bench <set> -benchmem ... | benchgate -baseline bench_baseline.json -update",
		Benchmarks: measured,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fatalf("write baseline: %v", err)
	}
	fmt.Printf("benchgate: baseline %s updated with %d benchmark(s)\n", path, len(measured))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(2)
}
