// Command benchgate is the benchmark-regression gate: it parses `go test
// -bench` output (stdin or -input), compares every benchmark that appears in
// the checked-in baseline, and exits non-zero when ns/op, allocs/op, or
// B/op regresses beyond the threshold. CI runs it instead of
// fire-and-forget smoke benches, so hot-path regressions fail the build
// instead of scrolling past.
//
// Usage:
//
//	go test -run '^$' -bench 'Scheduler|EdgePump' -benchmem ./... | benchgate -baseline bench_baseline.json
//	benchgate -baseline bench_baseline.json -input bench.txt
//	go test -run '^$' -bench . -benchmem ./... | benchgate -baseline bench_baseline.json -update
//
// The baseline records ns/op, allocs/op, and B/op per benchmark plus a
// global regression threshold (fraction; 0.15 = fail beyond +15%). ns/op is
// machine-dependent — regenerate the baseline with -update when the CI
// runner class changes. allocs/op and B/op are exact, so a zero-alloc
// baseline fails on the first allocation that sneaks back in. A negative
// (or absent) metric in the baseline is not gated for that benchmark.
//
// Exit status distinguishes the failure class so CI steps and scripts can
// react without scraping stderr:
//
//	0  every compared benchmark within threshold
//	1  at least one benchmark regressed beyond the threshold
//	2  usage or environment error (bad flags, unreadable files, malformed input)
//	3  input incomplete: no bench lines, no overlap with the baseline, or a
//	   gated metric absent from the input (e.g. -benchmem dropped) — the run
//	   proves nothing, which must not pass silently
//
// When both regressions and missing metrics occur, the regression wins (exit
// 1): the run did prove a slowdown.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Exit statuses, one per failure class (see the package comment).
const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
	exitIncomplete = 3
)

// Baseline is the checked-in reference (bench_baseline.json).
type Baseline struct {
	// Threshold is the allowed fractional regression (default 0.15).
	Threshold float64 `json:"threshold"`
	// Note documents how to regenerate the file.
	Note       string                `json:"note,omitempty"`
	Benchmarks map[string]*Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's reference numbers. A negative value means
// the metric is not gated for that benchmark; metrics absent from the
// baseline JSON decode as ungated rather than as a zero budget.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// UnmarshalJSON defaults missing metrics to -1 (ungated), so baselines
// written before a metric existed keep gating exactly what they recorded.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	type alias Benchmark
	a := alias{NsPerOp: -1, AllocsPerOp: -1, BytesPerOp: -1}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*b = Benchmark(a)
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its environment injected, returning the exit status.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "bench_baseline.json", "baseline JSON to compare against")
	input := fs.String("input", "", "benchmark output file (default stdin)")
	threshold := fs.Float64("threshold", 0, "override the baseline's regression threshold (fraction)")
	update := fs.Bool("update", false, "rewrite the baseline from the input instead of gating")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}

	in := stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: open input: %v\n", err)
			return exitUsage
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: parse benchmark output: %v\n", err)
		return exitUsage
	}
	if len(measured) == 0 {
		fmt.Fprintf(stderr, "benchgate: no benchmark result lines in input — did the bench step run with -bench?\n")
		return exitIncomplete
	}

	if *update {
		if err := writeBaseline(*baselinePath, measured, *threshold); err != nil {
			fmt.Fprintf(stderr, "benchgate: write baseline: %v\n", err)
			return exitUsage
		}
		fmt.Fprintf(stdout, "benchgate: baseline %s updated with %d benchmark(s)\n", *baselinePath, len(measured))
		return exitOK
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: read baseline: %v\n", err)
		return exitUsage
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "benchgate: decode baseline %s: %v\n", *baselinePath, err)
		return exitUsage
	}
	limit := base.Threshold
	if *threshold > 0 {
		limit = *threshold
	}
	if limit <= 0 {
		limit = 0.15
	}

	results, compared := compare(&base, measured, limit, stdout)
	if compared == 0 {
		fmt.Fprintf(stderr, "benchgate: none of the %d baseline benchmarks appeared in the input\n", len(base.Benchmarks))
		return exitIncomplete
	}
	regressed, incomplete := 0, 0
	for _, r := range results {
		if len(r.failures) == 0 {
			continue
		}
		if r.regressed() {
			regressed++
		} else {
			incomplete++
		}
		fmt.Fprintf(stderr, "benchgate: FAIL %s\n", r.summary())
	}
	switch {
	case regressed > 0:
		fmt.Fprintf(stderr, "benchgate: %d of %d benchmark(s) regressed beyond +%d%%\n", regressed, compared, int(limit*100))
		return exitRegression
	case incomplete > 0:
		fmt.Fprintf(stderr, "benchgate: %d benchmark(s) missing gated metrics in the input\n", incomplete)
		return exitIncomplete
	}
	fmt.Fprintf(stdout, "benchgate: %d benchmark(s) within +%d%% of baseline\n", compared, int(limit*100))
	return exitOK
}

// metricFailure is one gated metric gone bad: either over budget or absent
// from the input entirely.
type metricFailure struct {
	metric  string
	got     float64
	base    float64
	missing bool
}

// result is one compared benchmark's verdict.
type result struct {
	name     string
	limit    float64
	failures []metricFailure
}

// regressed reports whether any failure is a real over-budget measurement
// (as opposed to a gated metric missing from the input).
func (r *result) regressed() bool {
	for _, f := range r.failures {
		if !f.missing {
			return true
		}
	}
	return false
}

// summary renders the benchmark's verdict as a single line:
//
//	BenchmarkSchedulerTimerHeap: ns/op 1380 > 1150 (+38% over 1000); allocs/op gated but missing from input
func (r *result) summary() string {
	parts := make([]string, 0, len(r.failures))
	for _, f := range r.failures {
		if f.missing {
			parts = append(parts, fmt.Sprintf("%s gated but missing from input", f.metric))
			continue
		}
		if f.base > 0 {
			over := (f.got - f.base) / f.base * 100
			parts = append(parts, fmt.Sprintf("%s %.4g > %.4g (+%.0f%% over %.4g)",
				f.metric, f.got, f.base*(1+r.limit), over, f.base))
		} else {
			// A zero budget (e.g. a zero-alloc baseline) has no meaningful
			// percentage: any measurement at all is the regression.
			parts = append(parts, fmt.Sprintf("%s %.4g (baseline %.4g)", f.metric, f.got, f.base))
		}
	}
	return fmt.Sprintf("%s: %s", r.name, strings.Join(parts, "; "))
}

// compare walks the baseline in name order, prints the per-metric table to
// w, and returns one result per compared benchmark plus the compare count.
func compare(base *Baseline, measured map[string]*Benchmark, limit float64, w io.Writer) ([]*result, int) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var results []*result
	compared := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := measured[name]
		if !ok {
			continue // this CI step ran a subset of the gated benchmarks
		}
		compared++
		r := &result{name: name, limit: limit}
		check := func(metric string, got, want float64) {
			if want < 0 {
				return // metric not gated for this benchmark
			}
			if got < 0 {
				// A gated metric missing from the input means the bench step
				// lost its flag (e.g. -benchmem): passing silently would
				// defeat the gate exactly when it matters.
				r.failures = append(r.failures, metricFailure{metric: metric, base: want, missing: true})
				fmt.Fprintf(w, "%-34s %-12s %14s  baseline %14.4g  FAIL\n", name, metric, "missing", want)
				return
			}
			status := "ok"
			if got > want*(1+limit) {
				status = "FAIL"
				r.failures = append(r.failures, metricFailure{metric: metric, got: got, base: want})
			}
			fmt.Fprintf(w, "%-34s %-12s %14.4g  baseline %14.4g  %s\n", name, metric, got, want, status)
		}
		check("ns/op", got.NsPerOp, want.NsPerOp)
		check("allocs/op", got.AllocsPerOp, want.AllocsPerOp)
		check("B/op", got.BytesPerOp, want.BytesPerOp)
		results = append(results, r)
	}
	return results, compared
}

// parseBench extracts ns/op and allocs/op per benchmark from `go test -bench`
// output. Names are normalized by stripping the -GOMAXPROCS suffix; repeated
// runs of one benchmark keep the minimum (the conventional stable estimate).
func parseBench(r io.Reader) (map[string]*Benchmark, error) {
	out := make(map[string]*Benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := &Benchmark{NsPerOp: -1, AllocsPerOp: -1, BytesPerOp: -1}
		// Lines read "<name> <N> <value> <unit> <value> <unit> ...".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			}
		}
		if b.NsPerOp < 0 && b.AllocsPerOp < 0 && b.BytesPerOp < 0 {
			continue
		}
		if prev, ok := out[name]; ok {
			if b.NsPerOp >= 0 && (prev.NsPerOp < 0 || b.NsPerOp < prev.NsPerOp) {
				prev.NsPerOp = b.NsPerOp
			}
			if b.AllocsPerOp >= 0 && (prev.AllocsPerOp < 0 || b.AllocsPerOp < prev.AllocsPerOp) {
				prev.AllocsPerOp = b.AllocsPerOp
			}
			if b.BytesPerOp >= 0 && (prev.BytesPerOp < 0 || b.BytesPerOp < prev.BytesPerOp) {
				prev.BytesPerOp = b.BytesPerOp
			}
			continue
		}
		out[name] = b
	}
	return out, sc.Err()
}

func writeBaseline(path string, measured map[string]*Benchmark, threshold float64) error {
	if threshold <= 0 {
		threshold = 0.15
	}
	base := Baseline{
		Threshold:  threshold,
		Note:       "regenerate with: go test -run '^$' -bench <set> -benchmem ... | benchgate -baseline bench_baseline.json -update",
		Benchmarks: measured,
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
