// Command drrs-bench regenerates the paper's evaluation figures and tables
// on the simulated engine, and runs the dynamic-scenario track beyond them.
//
// Usage:
//
//	drrs-bench -list
//	drrs-bench -experiment all
//	drrs-bench -experiment fig10 -workload q7
//	drrs-bench -experiment fig15 -seeds 1
//	drrs-bench -experiment multiwave -workload flash-crowd
//	drrs-bench -experiment sweep -workload flash-crowd,diurnal -mechanisms drrs,meces
//	drrs-bench -experiment topology -workload rack-skew
//	drrs-bench -experiment multiwave -workload bigcluster-128 -topology rack8x16
//	drrs-bench -experiment control -workload flash-crowd-reactive
//	drrs-bench -experiment control -workload diurnal-autoscale -policy backlog
//	drrs-bench -experiment multiwave -workload flash-crowd -driver controller -policy threshold
//	drrs-bench -experiment all -parallel 8 -perf BENCH.json
//	drrs-bench -experiment control -seeds 2 -json control.json
//	drrs-bench -experiment fig15 -parallel 1 -cpuprofile cpu.out -memprofile mem.out
//	drrs-bench -record mu.trace -workload million-users -seed 1
//	drrs-bench -replay mu.trace -workload million-users -seed 1
//	drrs-bench -chaos 8 -workload node-loss-mid-migrate,straggler-rack,flaky-uplink -json chaos.json
//	drrs-bench -experiment search -workload flash-crowd-reactive -searchmode grid -json search.json
//	drrs-bench -counterfactual "k=2:noop" -workload flash-crowd-reactive -seed 5
//
// Experiments: fig2, fig10 (also emits Figs 11–13 from the same runs),
// fig14, fig15, multiwave, sweep, topology (rack-local vs spread placement),
// control (mechanisms under reactive closed-loop driving), search (offline
// policy search: grid and/or evolutionary sweeps over controller knobs with
// per-scenario Pareto fronts; -searchmode picks the sweep, -searchseed drives
// the evolutionary RNG stream), ablation, all.
// -workload accepts any registered scenario (see -list); fig10's default
// "all" covers the paper's q7, q8, twitch; sweep's default "all" covers
// every registered scenario. -topology/-placement force every run onto a
// named cluster substrate / placement policy; -driver/-policy force how runs
// are driven (scripted wave program vs closed-loop controller and which
// control policy decides); -faults forces every run's fault plan (a fault
// spec like "crash@12s:node=r0n1,restart=6s;ckpt=2s", or "off" to disable
// the chaos scenarios' own plans).
//
// -chaos N is the deterministic chaos search: N seeds (from -seed) ×
// scenarios (-workload, default the chaos trio) × mechanisms (-mechanisms)
// with randomized generated fault plans, every oracle checked on every run,
// each case executed twice for the determinism oracle, and any failing plan
// shrunk to a minimal self-reproducing spec string. Exits 1 when violations
// are found; -json writes them as a machine-readable artifact.
//
// -counterfactual runs one closed-loop scenario twice — unforced, then with
// the intervention spec applied to the controller's decision sequence
// ("k=2:noop", "k=1:target=12", "all:delay=2s"; entries ';'-separated) — and
// prints a side-by-side outcome diff with both decision audit trails.
//
// -record runs one scenario once while capturing the arrival stream its
// sources consume, writes it to a versioned trace file, and prints the run's
// outcome digest. -replay alone runs the trace back through one scenario and
// prints the digest again — identical digests are the byte-identity check.
// -replay combined with -experiment feeds the trace to every run of a figure.
//
// -json writes every figure's structured rows (plus decision counts where
// applicable) as a machine-readable record, so CI jobs consume figures
// without scraping the text tables.
//
// Independent (workload, mechanism, seed) runs execute on a worker pool of
// -parallel goroutines (default GOMAXPROCS; 1 forces sequential). Every
// simulation is single-threaded and seeded, so figure numbers are identical
// at any parallelism. -perf writes a machine-readable JSON record of wall
// time and simulated events per figure. -cpuprofile/-memprofile capture
// pprof profiles of the whole run (use -parallel 1 so samples attribute to
// one simulation at a time); EXPERIMENTS.md documents the workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"drrs/internal/bench"
	"drrs/internal/bench/cliopts"
	"drrs/internal/chaos"
	"drrs/internal/control"
	"drrs/internal/policysearch"
	"drrs/internal/scaling"
)

// figuresJSON is the top-level -json document: every figure's structured
// rows, so CI and analysis scripts consume numbers instead of scraping the
// printed tables.
type figuresJSON struct {
	GeneratedAt string       `json:"generated_at"`
	Experiment  string       `json:"experiment"`
	Seeds       []int64      `json:"seeds"`
	Figures     []figureJSON `json:"figures"`
}

// figureJSON is one figure's machine-readable rows.
type figureJSON struct {
	Title string               `json:"title"`
	Rows  map[string]bench.Row `json:"rows,omitempty"`
}

// figurePerf is one figure's perf accounting in the -perf JSON record.
type figurePerf struct {
	Name         string  `json:"name"`
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// perfRecord is the top-level -perf JSON document.
type perfRecord struct {
	GeneratedAt  string       `json:"generated_at"`
	GoMaxProcs   int          `json:"gomaxprocs"`
	Workers      int          `json:"workers"`
	Figures      []figurePerf `json:"figures"`
	TotalWallMS  float64      `json:"total_wall_ms"`
	TotalEvents  uint64       `json:"total_events"`
	EventsPerSec float64      `json:"events_per_sec"`
}

func main() {
	experiment := flag.String("experiment", "all", "fig2 | fig10 | fig14 | fig15 | multiwave | sweep | topology | search | ablation | all")
	workloadName := flag.String("workload", "all", "registered scenario name, comma list, or all (see -list)")
	mechanisms := flag.String("mechanisms", "", "comma list of mechanisms for multiwave/sweep/topology (default drrs,meces,megaphone)")
	seeds := flag.Int("seeds", 3, "number of repeated runs per configuration")
	baseSeed := flag.Int64("seed", 1, "base seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for independent runs (0 = GOMAXPROCS, 1 = sequential)")
	var opts cliopts.Common
	opts.Bind(flag.CommandLine)
	perfOut := flag.String("perf", "", "write a JSON perf record (wall time, events/sec per figure) to this file")
	jsonOut := flag.String("json", "", "write every figure's structured rows as machine-readable JSON to this file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	chaosN := flag.Int("chaos", 0, "run the deterministic chaos search over N seeds starting at -seed (0 disables)")
	counterfactual := flag.String("counterfactual", "", "intervention spec (e.g. \"k=2:noop\"): run one scenario with and without it and print the outcome diff")
	searchMode := flag.String("searchmode", "both", "policy-search sweep for -experiment search: grid | evolve | both")
	searchSeed := flag.Int64("searchseed", 1, "seed for the evolutionary policy search's RNG stream")
	searchSpace := flag.String("searchspace", "full", "policy-search knob menu: full | smoke (the CI-sized subset)")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-22s %-20s %-44s %s\n", "scenario", "driving", "layout", "description")
		for _, def := range bench.Definitions() {
			sc := def.New(*baseSeed)
			layout := def.Layout
			if layout == "" {
				layout = "flat single node"
			}
			fmt.Printf("%-22s %-20s %-44s %s\n", def.Name, sc.ProgramString(), layout, def.Description)
			fmt.Printf("%-22s %-20s traffic: %s\n", "", "", def.TrafficSummary())
			if fs := sc.Faults.Summary(); fs != "" {
				fmt.Printf("%-22s %-20s faults: %s\n", "", "", fs)
			}
		}
		return
	}
	if *seeds < 1 {
		fmt.Fprintf(os.Stderr, "drrs-bench: -seeds must be >= 1 (got %d): every figure needs at least one run per configuration\n", *seeds)
		os.Exit(2)
	}
	switch *experiment {
	case "fig2", "fig10", "fig14", "fig15", "multiwave", "sweep", "topology", "control", "search", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
	switch *searchMode {
	case "grid", "evolve", "both":
	default:
		fmt.Fprintf(os.Stderr, "drrs-bench: -searchmode must be grid, evolve, or both (got %q)\n", *searchMode)
		os.Exit(2)
	}
	var space policysearch.Space
	switch *searchSpace {
	case "full": // Search fills in DefaultSpace for the zero value.
	case "smoke":
		space = policysearch.SmokeSpace()
	default:
		fmt.Fprintf(os.Stderr, "drrs-bench: -searchspace must be full or smoke (got %q)\n", *searchSpace)
		os.Exit(2)
	}
	if *chaosN < 0 {
		fmt.Fprintf(os.Stderr, "drrs-bench: -chaos must be >= 0 (got %d)\n", *chaosN)
		os.Exit(2)
	}
	if *workloadName != "all" && len(splitList(*workloadName)) == 0 {
		fmt.Fprintf(os.Stderr, "drrs-bench: -workload %q selects no scenarios\n", *workloadName)
		os.Exit(2)
	}
	if *experiment == "topology" && opts.Placement != "" {
		// The topology figure IS the placement comparison; an override would
		// collapse both columns onto one policy.
		fmt.Fprintf(os.Stderr, "drrs-bench: -placement is ignored by -experiment topology (it compares policies itself)\n")
		opts.Placement = ""
	}
	if err := opts.Apply(); err != nil {
		fmt.Fprintf(os.Stderr, "drrs-bench: %v\n", err)
		os.Exit(2)
	}

	bench.Workers = *parallel

	var seedList []int64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, *baseSeed+int64(i))
	}
	mechList := splitList(*mechanisms)
	for _, m := range mechList {
		// Mechanisms panics on unknown names; surface that as a usage error
		// instead of a stack trace from inside a worker goroutine.
		func() {
			defer func() {
				if r := recover(); r != nil {
					fmt.Fprintf(os.Stderr, "drrs-bench: %v\n", r)
					os.Exit(2)
				}
			}()
			bench.Mechanisms(m)
		}()
	}

	// Trace mode: -record captures one run's arrival stream to a file;
	// -replay without an explicit -experiment runs the recorded stream back
	// through one scenario and prints the digest (the byte-identity check).
	// -replay with an explicit -experiment falls through: the whole figure
	// run consumes the trace via the installed override.
	if opts.Record != "" || (opts.Replay != "" && !flagWasSet("experiment")) {
		runTrace(&opts, *workloadName, mechList, *baseSeed)
		return
	}

	// Chaos mode branches before profiling setup, like trace mode: it owns
	// its exit code (1 = violations found, 2 = usage error) and its own -json
	// artifact shape.
	if *chaosN > 0 {
		os.Exit(runChaos(*chaosN, *workloadName, mechList, *baseSeed, *parallel, *jsonOut))
	}

	// Counterfactual mode is a single-run diff, like -record/-replay: one
	// scenario, one seed, one mechanism, two executions.
	if *counterfactual != "" {
		runCounterfactual(*counterfactual, *workloadName, mechList, *baseSeed)
		return
	}

	// Profiling setup runs after every usage-error exit above, and once it
	// has started, nothing may call os.Exit directly: the deferred chain
	// must unwind so profiles are flushed. Run order at exit (LIFO): perf
	// record, CPU-profile stop, exit-time heap dump, then exitCode —
	// registered first so it runs last.
	exitCode := 0
	defer func() {
		if exitCode != 0 {
			os.Exit(exitCode)
		}
	}()
	var cpuFile *os.File
	if *cpuProfile != "" {
		// Create/start before any flush defer is registered, so these two
		// usage-style exits cannot skip a pending flush.
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		cpuFile = f
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drrs-bench: -memprofile: %v\n", err)
				exitCode = 1
				return
			}
			runtime.GC() // report live + cumulative allocations accurately
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "drrs-bench: -memprofile: %v\n", err)
				exitCode = 1
				f.Close()
				return
			}
			f.Close()
			fmt.Printf("allocation profile written to %s\n", *memProfile)
		}()
	}
	if cpuFile != nil {
		defer func() {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Printf("cpu profile written to %s\n", *cpuProfile)
		}()
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perf := perfRecord{
		//lint:allow nowallclock report metadata timestamp; never enters the simulation
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Workers:     workers,
	}
	jsonRec := figuresJSON{
		//lint:allow nowallclock report metadata timestamp; never enters the simulation
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Experiment:  *experiment,
		Seeds:       seedList,
	}
	run := func(name string, fn func() bench.FigureResult) {
		ev0 := bench.EventsSimulated.Load()
		t0 := time.Now() //lint:allow nowallclock bench-runner wall budget: measures host time around a finished run
		res := fn()
		wall := time.Since(t0) //lint:allow nowallclock bench-runner wall budget: measures host time around a finished run
		events := bench.EventsSimulated.Load() - ev0
		perf.Figures = append(perf.Figures, figurePerf{
			Name:         res.Title,
			WallMS:       float64(wall.Microseconds()) / 1000,
			Events:       events,
			EventsPerSec: float64(events) / wall.Seconds(),
		})
		jsonRec.Figures = append(jsonRec.Figures, figureJSON{Title: res.Title, Rows: res.Rows})
		fmt.Printf("==== %s (wall %v, %d events) ====\n%s\n", res.Title, wall.Round(time.Millisecond), events, res.Text)
	}
	defer func() {
		if *jsonOut == "" {
			return
		}
		data, err := json.MarshalIndent(jsonRec, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: writing figure JSON: %v\n", err)
			exitCode = 1
			return
		}
		fmt.Printf("figure rows written to %s\n", *jsonOut)
	}()
	defer func() {
		if *perfOut == "" {
			return
		}
		for _, f := range perf.Figures {
			perf.TotalWallMS += f.WallMS
			perf.TotalEvents += f.Events
		}
		if perf.TotalWallMS > 0 {
			perf.EventsPerSec = float64(perf.TotalEvents) / (perf.TotalWallMS / 1000)
		}
		data, err := json.MarshalIndent(perf, "", "  ")
		if err == nil {
			err = os.WriteFile(*perfOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: writing perf record: %v\n", err)
			exitCode = 1
			return
		}
		fmt.Printf("perf record written to %s\n", *perfOut)
	}()

	switch *experiment {
	case "fig2":
		run("fig2", func() bench.FigureResult { return bench.Fig2(seedList) })
	case "fig10":
		for _, wl := range workloads(*workloadName, []string{"q7", "q8", "twitch"}) {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.HeadToHead(wl, seedList) })
		}
	case "fig14":
		run("fig14", func() bench.FigureResult { return bench.Fig14(seedList) })
	case "fig15":
		run("fig15", func() bench.FigureResult {
			_, res := bench.Fig15(*baseSeed,
				[]float64{6000, 10000, 12000},
				[]int{5 << 20, 15 << 20, 30 << 20},
				[]float64{0, 0.5, 1.0, 1.5},
				nil)
			return res
		})
	case "multiwave":
		for _, wl := range workloads(*workloadName, []string{"flash-crowd", "diurnal", "twitch-rebound"}) {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.MultiWave(wl, mechList, seedList) })
		}
	case "sweep":
		run("sweep", func() bench.FigureResult {
			return bench.Sweep(workloads(*workloadName, bench.ScenarioNames()), mechList, seedList)
		})
	case "topology":
		for _, wl := range workloads(*workloadName, []string{"rack-skew", "hetero-tiers"}) {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.TopologyFigure(wl, mechList, seedList) })
		}
	case "control":
		for _, wl := range workloads(*workloadName, []string{"flash-crowd-reactive", "diurnal-autoscale", "oscillation-guard"}) {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.ControlFigure(wl, mechList, seedList) })
		}
	case "search":
		for _, wl := range workloads(*workloadName, []string{"flash-crowd-reactive"}) {
			wl := wl
			mech := "drrs"
			if len(mechList) > 0 {
				mech = mechList[0]
			}
			run("search/"+wl, func() bench.FigureResult {
				return policysearch.Search(policysearch.SearchConfig{
					Scenario: wl, Mechanism: mech, Seeds: seedList,
					Mode: *searchMode, SearchSeed: *searchSeed, Space: space,
				})
			})
		}
	case "ablation":
		run("ablation", func() bench.FigureResult { return ablation(*baseSeed) })
	case "all":
		run("fig2", func() bench.FigureResult { return bench.Fig2(seedList) })
		for _, wl := range []string{"q7", "q8", "twitch"} {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.HeadToHead(wl, seedList) })
		}
		run("fig14", func() bench.FigureResult { return bench.Fig14(seedList) })
		run("multiwave", func() bench.FigureResult { return bench.MultiWave("flash-crowd", mechList, seedList) })
		run("topology", func() bench.FigureResult { return bench.TopologyFigure("rack-skew", mechList, seedList) })
		run("control", func() bench.FigureResult { return bench.ControlFigure("flash-crowd-reactive", mechList, seedList) })
		run("fig15", func() bench.FigureResult {
			_, res := bench.Fig15(*baseSeed,
				[]float64{6000, 10000, 12000},
				[]int{5 << 20, 15 << 20, 30 << 20},
				[]float64{0, 0.5, 1.0, 1.5},
				nil)
			return res
		})
	default:
		// Unreachable: experiment names are validated before profiling starts.
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		exitCode = 2
	}
}

// ablation runs the design-choice sweeps DESIGN.md calls out (beyond the
// paper's Fig 14): subscale granularity, Record Scheduling buffer depth,
// node concurrency, and Megaphone's batch size.
func ablation(seed int64) bench.FigureResult {
	var b []string
	b = append(b, bench.FormatSweep("DRRS subscale size (Twitch)", bench.SweepSubscaleSize(seed, []int{1, 4, 8, 32, 128})))
	b = append(b, bench.FormatSweep("DRRS record-scheduling buffer depth (Twitch)", bench.SweepBufferDepth(seed, []int{1, 20, 200})))
	b = append(b, bench.FormatSweep("DRRS node concurrency (sensitivity cluster)", bench.SweepNodeConcurrency(seed, []int{1, 2, 4})))
	b = append(b, bench.FormatSweep("Megaphone batch size (Twitch)", bench.SweepMegaphoneBatch(seed, []int{1, 4, 16, 111})))
	return bench.FigureResult{Title: "ablation", Text: strings.Join(b, "\n")}
}

// chaosJSON is the -chaos -json artifact: the search bounds plus every
// violation with its self-reproducing spec and repro command line.
type chaosJSON struct {
	GeneratedAt string           `json:"generated_at"`
	Scenarios   []string         `json:"scenarios"`
	Mechanisms  []string         `json:"mechanisms"`
	Seeds       []int64          `json:"seeds"`
	Cases       int              `json:"cases"`
	Runs        int              `json:"runs"`
	WallMS      float64          `json:"wall_ms"`
	Violations  []chaosViolation `json:"violations"`
}

// chaosViolation is one oracle failure in the artifact.
type chaosViolation struct {
	Scenario   string `json:"scenario"`
	Mechanism  string `json:"mechanism"`
	Seed       int64  `json:"seed"`
	Oracle     string `json:"oracle"`
	Detail     string `json:"detail"`
	Spec       string `json:"spec"`
	Shrunk     bool   `json:"shrunk"`
	ShrinkRuns int    `json:"shrink_runs,omitempty"`
	Repro      string `json:"repro"`
}

// runChaos is the -chaos N mode: generated fault plans over N seeds ×
// scenarios × mechanisms, every oracle on every run, shrinking armed.
// Returns the process exit code: 0 clean, 1 violations found, 2 usage error.
func runChaos(n int, workloadName string, mechList []string, baseSeed int64, workers int, jsonOut string) (code int) {
	defer func() {
		// Unknown scenario names surface as panics from the registry; report
		// them as usage errors rather than worker stack traces.
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: %v\n", r)
			code = 2
		}
	}()
	cfg := chaos.Config{Mechanisms: mechList, Workers: workers, Shrink: true}
	if workloadName != "all" {
		cfg.Scenarios = splitList(workloadName)
	}
	for i := 0; i < n; i++ {
		cfg.Seeds = append(cfg.Seeds, baseSeed+int64(i))
	}
	t0 := time.Now() //lint:allow nowallclock bench-runner wall budget: measures host time around a finished search
	res := chaos.Search(cfg)
	wall := time.Since(t0) //lint:allow nowallclock bench-runner wall budget: measures host time around a finished search
	fmt.Printf("chaos search: %d cases (%d runs) over seeds %d..%d, wall %v\n",
		res.Cases, res.Runs, baseSeed, baseSeed+int64(n)-1, wall.Round(time.Millisecond))
	if len(res.Violations) == 0 {
		fmt.Println("no oracle violations")
	}
	for i, v := range res.Violations {
		fmt.Printf("violation %d [%s/%s seed=%d] %s: %s\n",
			i+1, v.Scenario, v.Mechanism, v.Seed, v.Oracle, v.Detail)
		if v.Shrunk {
			fmt.Printf("  shrunk to %d fault(s) in %d runs\n", len(v.Plan.Faults), v.ShrinkRuns)
		}
		fmt.Printf("  repro: %s\n", v.Repro())
	}
	if jsonOut != "" {
		rec := chaosJSON{
			//lint:allow nowallclock report metadata timestamp; never enters the simulation
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Scenarios:   res.Scenarios,
			Mechanisms:  res.Mechanisms,
			Seeds:       cfg.Seeds,
			Cases:       res.Cases,
			Runs:        res.Runs,
			WallMS:      float64(wall.Microseconds()) / 1000,
			Violations:  []chaosViolation{},
		}
		for _, v := range res.Violations {
			rec.Violations = append(rec.Violations, chaosViolation{
				Scenario: v.Scenario, Mechanism: v.Mechanism, Seed: v.Seed,
				Oracle: v.Oracle, Detail: v.Detail, Spec: v.Spec,
				Shrunk: v.Shrunk, ShrinkRuns: v.ShrinkRuns, Repro: v.Repro(),
			})
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: writing chaos JSON: %v\n", err)
			return 1
		}
		fmt.Printf("chaos record written to %s\n", jsonOut)
	}
	if len(res.Violations) > 0 {
		return 1
	}
	return 0
}

// runCounterfactual is the -counterfactual mode: parse the intervention
// spec, run one (workload, mechanism, seed) tuple with and without it, and
// print the side-by-side outcome diff.
func runCounterfactual(spec, workloadName string, mechList []string, seed int64) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: %v\n", r)
			os.Exit(2)
		}
	}()
	ivs, err := control.ParseInterventions(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drrs-bench: -counterfactual: %v\n", err)
		os.Exit(2)
	}
	names := splitList(workloadName)
	if workloadName == "all" || len(names) != 1 {
		fmt.Fprintf(os.Stderr, "drrs-bench: -counterfactual diffs one scenario: pass a single closed-loop -workload (see -list)\n")
		os.Exit(2)
	}
	mech := "drrs"
	if len(mechList) > 0 {
		mech = mechList[0]
	}
	cf := policysearch.RunCounterfactual(names[0], mech, seed, ivs)
	fmt.Print(cf.FormatDiff())
}

// flagWasSet reports whether the named flag appeared on the command line
// (as opposed to holding its default).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runTrace is the -record/-replay single-run mode: one scenario, one
// mechanism, one seed. Record tees the run's arrival stream to a trace file;
// replay feeds a recorded one back. Both print the outcome digest, so
// byte-identity between a recorded run and its replay is checkable from the
// shell.
func runTrace(opts *cliopts.Common, workloadName string, mechList []string, seed int64) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: %v\n", r)
			os.Exit(2)
		}
	}()
	names := splitList(workloadName)
	if workloadName == "all" || len(names) != 1 {
		fmt.Fprintf(os.Stderr, "drrs-bench: -record/-replay run one scenario: pass a single -workload (see -list)\n")
		os.Exit(2)
	}
	mech := "drrs"
	if len(mechList) > 0 {
		mech = mechList[0]
	}
	sc := bench.ScenarioByName(names[0], seed)
	factory := func() scaling.Mechanism { return bench.Mechanisms(mech) }

	fmt.Printf("workload   : %s (seed %d, mechanism %s)\n", names[0], seed, mech)
	if opts.Record != "" {
		out, trace := sc.RecordWith(factory)
		if err := trace.WriteFile(opts.Record); err != nil {
			fmt.Fprintf(os.Stderr, "drrs-bench: -record: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("recorded   : %d events over %d source streams to %s\n",
			trace.Events(), trace.SourceParallelism, opts.Record)
		fmt.Printf("throughput : %d records total\n", out.Throughput.Total())
		fmt.Printf("digest     : 0x%016x\n", bench.OutcomeDigest(out))
		return
	}
	out := sc.RunWith(factory)
	fmt.Printf("replayed   : %s\n", opts.Replay)
	fmt.Printf("throughput : %d records total\n", out.Throughput.Total())
	fmt.Printf("digest     : 0x%016x\n", bench.OutcomeDigest(out))
}

// workloads resolves the -workload flag: "all" expands to def, anything else
// splits on commas. An empty selection is a usage error, not a no-op — a
// figure run that silently produces nothing would read as success in CI.
func workloads(name string, def []string) []string {
	if name == "all" {
		return def
	}
	out := splitList(name)
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "drrs-bench: -workload %q selects no scenarios\n", name)
		os.Exit(2)
	}
	return out
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
