// Command drrs-bench regenerates the paper's evaluation figures and tables
// on the simulated engine.
//
// Usage:
//
//	drrs-bench -experiment all
//	drrs-bench -experiment fig10 -workload q7
//	drrs-bench -experiment fig15 -seeds 1
//
// Experiments: fig2, fig10 (also emits Figs 11–13 from the same runs),
// fig14, fig15, all. Workloads for fig10: q7, q8, twitch, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"drrs/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2 | fig10 | fig14 | fig15 | ablation | all")
	workloadName := flag.String("workload", "all", "q7 | q8 | twitch | all (fig10 only)")
	seeds := flag.Int("seeds", 3, "number of repeated runs per configuration")
	baseSeed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	var seedList []int64
	for i := 0; i < *seeds; i++ {
		seedList = append(seedList, *baseSeed+int64(i))
	}

	run := func(name string, fn func() bench.FigureResult) {
		t0 := time.Now()
		res := fn()
		fmt.Printf("==== %s (wall %v) ====\n%s\n", res.Title, time.Since(t0).Round(time.Millisecond), res.Text)
	}

	switch *experiment {
	case "fig2":
		run("fig2", func() bench.FigureResult { return bench.Fig2(seedList) })
	case "fig10":
		for _, wl := range workloads(*workloadName) {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.HeadToHead(wl, seedList) })
		}
	case "fig14":
		run("fig14", func() bench.FigureResult { return bench.Fig14(seedList) })
	case "fig15":
		run("fig15", func() bench.FigureResult {
			_, res := bench.Fig15(*baseSeed,
				[]float64{6000, 10000, 12000},
				[]int{5 << 20, 15 << 20, 30 << 20},
				[]float64{0, 0.5, 1.0, 1.5},
				nil)
			return res
		})
	case "ablation":
		run("ablation", func() bench.FigureResult { return ablation(*baseSeed) })
	case "all":
		run("fig2", func() bench.FigureResult { return bench.Fig2(seedList) })
		for _, wl := range []string{"q7", "q8", "twitch"} {
			wl := wl
			run(wl, func() bench.FigureResult { return bench.HeadToHead(wl, seedList) })
		}
		run("fig14", func() bench.FigureResult { return bench.Fig14(seedList) })
		run("fig15", func() bench.FigureResult {
			_, res := bench.Fig15(*baseSeed,
				[]float64{6000, 10000, 12000},
				[]int{5 << 20, 15 << 20, 30 << 20},
				[]float64{0, 0.5, 1.0, 1.5},
				nil)
			return res
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// ablation runs the design-choice sweeps DESIGN.md calls out (beyond the
// paper's Fig 14): subscale granularity, Record Scheduling buffer depth,
// node concurrency, and Megaphone's batch size.
func ablation(seed int64) bench.FigureResult {
	var b []string
	b = append(b, bench.FormatSweep("DRRS subscale size (Twitch)", bench.SweepSubscaleSize(seed, []int{1, 4, 8, 32, 128})))
	b = append(b, bench.FormatSweep("DRRS record-scheduling buffer depth (Twitch)", bench.SweepBufferDepth(seed, []int{1, 20, 200})))
	b = append(b, bench.FormatSweep("DRRS node concurrency (sensitivity cluster)", bench.SweepNodeConcurrency(seed, []int{1, 2, 4})))
	b = append(b, bench.FormatSweep("Megaphone batch size (Twitch)", bench.SweepMegaphoneBatch(seed, []int{1, 4, 16, 111})))
	return bench.FigureResult{Title: "ablation", Text: strings.Join(b, "\n")}
}

func workloads(name string) []string {
	if name == "all" {
		return []string{"q7", "q8", "twitch"}
	}
	return []string{name}
}
