// Command drrs-sim runs a single workload + scaling-mechanism configuration
// on the simulated engine and prints a run report: latency statistics,
// throughput, the scaling-delay decomposition (Lp / Ls / Ld), and per-
// instance state placement.
//
// Usage:
//
//	drrs-sim -workload twitch -mechanism drrs
//	drrs-sim -workload q7 -mechanism megaphone -seed 7
//	drrs-sim -workload flash-crowd -mechanism drrs
//	drrs-sim -workload flash-crowd-reactive -mechanism meces
//	drrs-sim -workload diurnal -mechanism drrs -driver controller -policy predictive
//	drrs-sim -workload q8 -mechanism no-scale
//	drrs-sim -workload million-users -record mu.trace
//	drrs-sim -workload million-users -replay mu.trace
//
// -workload accepts any registered scenario (drrs-bench -list enumerates
// them); multi-wave scenarios print one report block per wave. Closed-loop
// scenarios (and any scenario forced onto -driver controller) additionally
// print the controller's per-decision audit trail.
//
// The override flags (-topology, -placement, -driver, -policy, -faults,
// -record, -replay) are shared with drrs-bench; -record captures the run's
// arrival stream to a trace file and -replay feeds a recorded one back. The
// report always ends with the outcome digest, so two runs can be compared
// bit-for-bit from the shell.
//
// Mechanisms: drrs, drrs-dr, drrs-schedule, drrs-subscale, meces, megaphone,
// otfs, otfs-allatonce, stop-restart, unbound, no-scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"drrs/internal/bench"
	"drrs/internal/bench/cliopts"
	"drrs/internal/fitness"
	"drrs/internal/scaling"
	"drrs/internal/simtime"
)

func main() {
	workloadName := flag.String("workload", "twitch", "any registered scenario (see drrs-bench -list)")
	mechName := flag.String("mechanism", "drrs", "scaling mechanism (see doc)")
	seed := flag.Int64("seed", 1, "simulation seed")
	var opts cliopts.Common
	opts.Bind(flag.CommandLine)
	verbose := flag.Bool("v", false, "print the post-run instance table")
	flag.Parse()

	defer func() {
		if r := recover(); r != nil {
			fmt.Fprintf(os.Stderr, "drrs-sim: %v\n", r)
			os.Exit(2)
		}
	}()

	if err := opts.Apply(); err != nil {
		fmt.Fprintf(os.Stderr, "drrs-sim: %v\n", err)
		os.Exit(2)
	}
	sc := bench.ScenarioByName(*workloadName, *seed)
	newMech := func() scaling.Mechanism { return bench.Mechanisms(*mechName) }
	t0 := time.Now() //lint:allow nowallclock wall-clock report column; measured around a finished run
	// Fresh mechanism per wave: multi-wave scenarios rescale repeatedly, and
	// mechanisms carry per-operation state.
	var o bench.Outcome
	recorded := ""
	if opts.Record != "" {
		out, trace := sc.RecordWith(newMech)
		if err := trace.WriteFile(opts.Record); err != nil {
			fmt.Fprintf(os.Stderr, "drrs-sim: -record: %v\n", err)
			os.Exit(1)
		}
		recorded = fmt.Sprintf("%d arrival events to %s", trace.Events(), opts.Record)
		o = out
	} else {
		o = sc.RunWith(newMech)
	}
	wall := time.Since(t0) //lint:allow nowallclock wall-clock report column; measured around a finished run

	fmt.Printf("workload   : %s (seed %d)\n", *workloadName, *seed)
	fmt.Printf("mechanism  : %s\n", o.Mechanism)
	if recorded != "" {
		fmt.Printf("recorded   : %s\n", recorded)
	}
	if opts.Replay != "" {
		fmt.Printf("replayed   : %s\n", opts.Replay)
	}
	fmt.Printf("virtual    : %v simulated in %v wall\n", simtime.Duration(o.EndAt), wall.Round(time.Millisecond))
	if o.Mechanism != "no-scale" {
		// ProgramString reflects the -driver/-policy override, like the run.
		fmt.Printf("scaling    : %s-driven, program %s, first request at %v, completed=%v\n",
			o.Driver, sc.ProgramString(), o.ScaleAt, o.Done)
		if len(o.Decisions) > 0 {
			fmt.Printf("decisions  :\n%s", bench.FormatDecisions(o))
		}
		for i, w := range o.Waves {
			if w.Scale == nil {
				fmt.Printf("  wave %d   : →%d never launched (previous wave incomplete or past the horizon)\n",
					i, w.Wave.NewParallelism)
				continue
			}
			fmt.Printf("  wave %d   : %d→%d at %v\n", i, w.FromParallelism, w.Wave.NewParallelism, w.ScaleAt)
			fmt.Printf("    duration : %v (migration), %v (latency re-stabilization)\n",
				w.Scale.MigrationDuration(), w.ScalingPeriod())
			fmt.Printf("    Lp prop  : %v cumulative propagation delay\n", w.Scale.CumulativePropagationDelay())
			fmt.Printf("    Ls susp  : %v cumulative suspension\n", w.Scale.CumulativeSuspension())
			fmt.Printf("    Ld dep   : %v average dependency overhead\n", w.Scale.AvgDependencyOverhead())
			fmt.Printf("    migrated : %d key groups\n", w.Scale.UnitsMigrated())
		}
	}
	fmt.Printf("latency    : pre-scale avg %.1fms\n", o.PreAvgMs)
	if o.Mechanism != "no-scale" {
		fmt.Printf("           : during scaling peak %.1fms, avg %.1fms\n",
			o.PeakIn(o.ScaleAt, o.EndAt), o.AvgIn(o.ScaleAt, o.EndAt))
	}
	fmt.Printf("throughput : %d records total\n", o.Throughput.Total())
	if o.TransferredBytes > 0 {
		fmt.Printf("migration  : %.2f MB moved, %.2f MB across rack uplinks\n",
			float64(o.TransferredBytes)/(1<<20), float64(o.CrossRackBytes)/(1<<20))
	}
	if o.InstanceSeconds > 0 {
		c := o.Fitness()
		fmt.Printf("fitness    : score %.2f (SLO %.0fs bad, %.2f MB migrated, %.0f instance-sec, %.0f oscillations)\n",
			c.Score(fitness.DefaultWeights()), c.SLOViolations, c.MigrationMB, c.InstanceSeconds, c.Oscillations)
	}
	// The digest fingerprints the run's full outcome; identical digests mean
	// bit-identical runs (the -record/-replay round-trip check).
	fmt.Printf("digest     : 0x%016x\n", bench.OutcomeDigest(o))
	if *verbose {
		fmt.Println("\ninstances:")
		// Rebuild is not possible post-run; report the throughput timeline.
		for _, p := range o.Throughput.Series().Downsample(simtime.Sec(5)) {
			fmt.Printf("  t=%-8v %8.0f rec/s\n", p.At, p.V)
		}
	}
}
